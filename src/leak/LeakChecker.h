//===- LeakChecker.h - Android Activity-leak client -------------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation client of Sec. 4: detect Activity leaks by checking
/// whether any Activity instance is reachable from a static field in the
/// points-to graph, then thresh the alarms with witness-refutation search.
///
/// For every (static field, Activity location) pair connected in the
/// points-to graph, the checker walks a heap path from source to sink and
/// asks the witness search about each edge. A refuted edge is deleted and
/// a new path is sought; if source and sink become disconnected the alarm
/// is refuted, and if some path has every edge witnessed (or timed out,
/// which is soundly treated as not-refuted) the alarm is reported.
///
/// Observability: the checker exposes a versioned machine-readable JSON
/// report (writeJsonReport), deterministic per-edge trace events
/// (traceEvents / writeTraceJsonl), and effort counters and histograms
/// (stats). See docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_LEAK_LEAKCHECKER_H
#define THRESHER_LEAK_LEAKCHECKER_H

#include "support/Json.h"
#include "support/Trace.h"
#include "sym/WitnessSearch.h"

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace thresher {

class RefutationCache;

/// How the refutation cache participated in one edge verdict.
enum class EdgeCacheState : uint8_t {
  None,        ///< No cache attached when the edge was threshed.
  Hit,         ///< Verdict served from the cache; search skipped.
  Miss,        ///< No cache entry; searched and recorded.
  Invalidated, ///< Entry existed but its facts failed replay; re-searched.
};

/// Canonical name for \p S: "none", "hit", "miss", or "invalidated".
const char *edgeCacheStateName(EdgeCacheState S);

/// Status of one (static field, Activity) alarm after threshing.
enum class AlarmStatus : uint8_t {
  Refuted,   ///< Source and sink disconnected by refutations.
  Witnessed, ///< Every edge of some path witnessed: reported leak.
  Timeout,   ///< Some path survived only because edges timed out.
};

/// Canonical name for \p S: "REFUTED", "LEAK", or "LEAK_TIMEOUT".
const char *alarmStatusName(AlarmStatus S);

/// One alarm and its verdict.
struct AlarmResult {
  GlobalId Source = InvalidId;
  AbsLocId Activity = InvalidId;
  AlarmStatus Status = AlarmStatus::Refuted;
  /// The surviving heap path (for Witnessed/Timeout), as edge labels.
  std::vector<std::string> PathDescription;
};

/// Verdict for one consulted points-to edge (deterministic across thread
/// counts; Nanos is wall-clock and therefore volatile).
struct EdgeVerdict {
  std::string Label;
  bool IsGlobal = false;
  SearchOutcome Outcome = SearchOutcome::Refuted;
  /// Why the search stopped short (None unless Outcome is
  /// BudgetExhausted). Deterministic in step-denominated mode.
  ExhaustionReason Reason = ExhaustionReason::None;
  uint64_t Steps = 0;  ///< Budget consumed by the search.
  uint64_t Nanos = 0;  ///< Search wall-clock (volatile; 0 on cache hits).
  /// Cache participation (volatile across cold/warm runs; excluded from
  /// the deterministic report form).
  EdgeCacheState Cache = EdgeCacheState::None;
};

/// Aggregate report mirroring the columns of Table 1. The edge counts
/// cover exactly the edges the (deterministic, sequential) threshing
/// algorithm consulted, so they are identical for every thread count;
/// PrefetchedEdges additionally counts edges the parallel mode threshed
/// eagerly (equal to the consulted count when Threads == 1).
struct LeakReport {
  std::vector<AlarmResult> Alarms;
  uint32_t NumAlarms = 0;      ///< Alrms
  uint32_t RefutedAlarms = 0;  ///< RefA
  uint32_t Fields = 0;         ///< Flds: distinct static fields alarmed.
  uint32_t RefutedFields = 0;  ///< RefFlds: fields with all alarms refuted.
  uint32_t RefutedEdges = 0;   ///< RefEdg
  uint32_t WitnessedEdges = 0; ///< WitEdg
  uint32_t TimeoutEdges = 0;   ///< TO
  double Seconds = 0.0;        ///< T(s): symbolic execution time.
  unsigned Threads = 1;        ///< Thread count the report was produced with.
  uint64_t PrefetchedEdges = 0; ///< Edges threshed eagerly (>= consulted).
  /// Per-edge verdicts for every consulted edge, sorted by label.
  std::vector<EdgeVerdict> Edges;

  /// Refutation-cache activity for this run (all zero / disabled when no
  /// cache was attached). Volatile across cold/warm runs, so the whole
  /// section lives under "effort" in the JSON report.
  struct CacheSummary {
    bool Enabled = false;
    uint64_t Loaded = 0;           ///< Entries loaded from disk.
    uint64_t Valid = 0;            ///< Entries whose facts replayed.
    uint64_t Stale = 0;            ///< Entries whose facts failed replay.
    uint64_t Hits = 0;             ///< Searches skipped via cache.
    uint64_t Misses = 0;           ///< Probes with no entry.
    uint64_t Invalidated = 0;      ///< Probes that found a stale entry.
    uint64_t Inserted = 0;         ///< Fresh results recorded.
    uint64_t Verified = 0;         ///< Hits re-searched under --cache-verify.
    uint64_t VerifyMismatches = 0; ///< Verify searches disagreeing w/ cache.
  };
  CacheSummary Cache;

  /// Splits surviving alarms into true/false using a ground-truth set of
  /// seeded leaks (pairs of global and allocation-site label).
  uint32_t countTrue(const Program &P, const AbsLocTable &T,
                     const std::vector<std::pair<GlobalId, std::string>>
                         &TrueLeaks) const;
};

/// Serialization options for the JSON report.
struct ReportJsonOptions {
  /// Omit wall-clock timings and effort-dependent sections (counters,
  /// histograms, prefetch totals), leaving only fields that are identical
  /// for every thread count. The differential tests compare this form.
  bool DeterministicOnly = false;
  /// Pretty-print indent; negative for compact one-line output.
  int Indent = 2;
};

/// The leak checker.
class LeakChecker {
public:
  /// Version tag stamped into every JSON report ("schema" member).
  /// v1.1: per-edge "reason" on TIMEOUT verdicts, config.governor section,
  /// robust.* counters under effort (minor bump: strictly additive).
  /// v1.2: config.forwardSlice / config.globalSubsume flags and the
  /// effort.registry section (minor bump: strictly additive).
  static constexpr const char *ReportSchemaVersion = "thresher-report/v1.2";

  /// \p ActivityBase is the class whose (transitive) instances count as
  /// Activities.
  LeakChecker(const Program &P, const PointsToResult &PTA,
              ClassId ActivityBase, SymOptions Opts = {});

  /// Attaches a shared resource governor (not owned; may be nullptr to
  /// detach). Threaded into the sequential engine and every prefetch
  /// worker; run() additionally enforces the whole-run deadline at each
  /// consult and folds the governor's counters into stats() afterwards.
  /// On exhaustion the affected edges degrade to TIMEOUT (alarm kept) and
  /// are never written to the refutation cache.
  void setGovernor(ResourceGovernor *G);
  ResourceGovernor *governor() const { return Gov; }

  /// Attaches a refutation cache (not owned; may be nullptr to detach).
  /// The caller must load() and validate() it first; run() then probes it
  /// before every witness search and records fresh results with their
  /// dependency footprints. With \p Verify set, cache hits still run the
  /// full search and mismatches are counted (and the fresh verdict wins).
  void setCache(RefutationCache *C, uint64_t ConfigHash, bool Verify = false);

  /// Runs the full pipeline and returns the report. With \p Threads > 1
  /// the candidate edges are threshed concurrently first (the paper notes
  /// the analysis "is quite amenable to parallelization"; their
  /// implementation was sequential — this realizes it): every edge
  /// reachable from an alarmed static field is dispatched to a worker
  /// with its own WitnessSearch, then the sequential path/re-search
  /// algorithm runs entirely against the cache. The sequential algorithm
  /// consults the cache exactly as it would consult live searches, so
  /// alarm verdicts, per-edge verdicts, and the report's edge counts are
  /// identical for every thread count (pinned by
  /// tests/parallel_diff_test.cpp); only wall-clock fields and the
  /// PrefetchedEdges total vary.
  LeakReport run(unsigned Threads = 1);

  /// The underlying search engine's counters and histograms (includes the
  /// points-to phase's `pta.*` effort and, after run() with Threads > 1,
  /// the merged worker counters).
  const Stats &stats() const { return WS.stats(); }
  Stats &stats() { return WS.stats(); }

  /// After run(): deterministically ordered per-edge trace events (sorted
  /// by edge label, Seq assigned after the parallel merge).
  const std::vector<TraceEvent> &traceEvents() const { return Trace; }

  /// Writes traceEvents() as JSON Lines, one event per line.
  void writeTraceJsonl(std::ostream &OS) const;

  /// Builds the versioned machine-readable report document.
  JsonValue buildJsonReport(const LeakReport &R,
                            const ReportJsonOptions &O = {}) const;

  /// Serializes buildJsonReport() (with a trailing newline).
  void writeJsonReport(std::ostream &OS, const LeakReport &R,
                       const ReportJsonOptions &O = {}) const;

  /// After run(): labels of edges in each outcome class (diagnostics,
  /// consulted edges only).
  std::vector<std::string> edgesWithOutcome(SearchOutcome O) const;

private:
  struct EdgeKey {
    bool IsGlobal = false;
    GlobalId G = InvalidId;
    AbsLocId Base = InvalidId;
    FieldId Fld = InvalidId;
    AbsLocId Target = InvalidId;
    bool operator<(const EdgeKey &O) const {
      return std::tie(IsGlobal, G, Base, Fld, Target) <
             std::tie(O.IsGlobal, O.G, O.Base, O.Fld, O.Target);
    }
  };

  /// Subsumption-registry activity of the search that produced one
  /// EdgeInfo: the history slots it probed (and missed), the refuted
  /// queries it harvested, and — on a cache hit — the payload the cache
  /// persisted for it. Drives the deterministic publication protocol in
  /// checkEdge (see docs/PRUNING.md).
  struct RegistryLog {
    std::vector<std::string> ProbedSlots;
    std::vector<SubsumeEntry> Pendings;
    std::string PersistedJson;
  };

  /// A cached edge-search result (outcome is deterministic; Nanos is the
  /// wall-clock of the search that produced it).
  struct EdgeInfo {
    SearchOutcome Outcome = SearchOutcome::Refuted;
    ExhaustionReason Reason = ExhaustionReason::None;
    uint64_t Steps = 0;
    uint64_t Nanos = 0;
    EdgeCacheState Cache = EdgeCacheState::None;
    /// Shared (EdgeResults + Consulted copies alias one log); null when
    /// the registry is disabled or the edge degraded without a search.
    std::shared_ptr<RegistryLog> Reg;
  };

  std::string edgeLabel(const EdgeKey &E) const;
  SearchOutcome checkEdge(const EdgeKey &E);
  /// Produces the verdict for \p E on \p Engine: probes the refutation
  /// cache first (hit -> skip the search) and records fresh results with
  /// their dependency footprint. Shared by the sequential path and the
  /// parallel prefetch workers (the cache is internally locked).
  /// \p BypassCacheProbe skips the cache probe (fresh results are still
  /// recorded): the consult-time re-search of a registry-invalidated
  /// prefetch result must not be served the very entry that prefetch just
  /// inserted.
  EdgeInfo threshEdge(WitnessSearch &Engine, const EdgeKey &E,
                      bool BypassCacheProbe = false);
  /// BFS for a path of edges not yet refuted *by a consulted search* from
  /// \p G to \p Target (prefetched-but-unconsulted refutations are
  /// deliberately ignored so the exploration order matches the purely
  /// sequential run).
  bool findPath(GlobalId G, AbsLocId Target, std::vector<EdgeKey> &Path);
  /// All (static field, Activity location) pairs in the points-to graph.
  std::vector<std::pair<GlobalId, AbsLocId>> enumerateAlarms() const;
  /// Threshes every edge reachable from an alarmed global, concurrently.
  void prefetchEdgesParallel(
      const std::vector<std::pair<GlobalId, AbsLocId>> &Alarms,
      unsigned Threads);

  const Program &P;
  const PointsToResult &PTA;
  ClassId ActivityBase;
  SymOptions Opts;
  WitnessSearch WS;
  /// Optional shared resource governor (not owned).
  ResourceGovernor *Gov = nullptr;
  /// Optional persistent refutation cache (not owned).
  RefutationCache *Cache = nullptr;
  uint64_t CacheConfig = 0;
  bool CacheVerify = false;
  /// The shared cross-edge subsumption registry (attached to WS and every
  /// prefetch worker when Opts.GlobalSubsume). Cleared at the start of
  /// each run(); stays empty during prefetch and is fed strictly in
  /// consult order by checkEdge, so its contents at each consult are
  /// identical for every thread count.
  SubsumeRegistry Registry;
  /// History slots some already-consulted edge has published into.
  std::set<std::string> PublishedSlots;
  /// Labels of edges whose prefetched result was re-searched at consult
  /// time (their prefetch trace events are dropped before the merge).
  std::set<std::string> ResearchedLabels;
  /// fingerprintProgram(P), stamped onto persisted registry payloads.
  uint64_t ProgFp = 0;
  /// Results of every search performed (prefetch fills this eagerly).
  std::map<EdgeKey, EdgeInfo> EdgeResults;
  /// The subset of EdgeResults the sequential algorithm consulted.
  std::map<EdgeKey, EdgeInfo> Consulted;
  /// Per-worker trace buffers awaiting the deterministic merge.
  std::vector<std::vector<TraceEvent>> TraceBuffers;
  /// Merged, deterministically ordered trace of the last run().
  std::vector<TraceEvent> Trace;
};

} // namespace thresher

#endif // THRESHER_LEAK_LEAKCHECKER_H
