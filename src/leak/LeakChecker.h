//===- LeakChecker.h - Android Activity-leak client -------------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation client of Sec. 4: detect Activity leaks by checking
/// whether any Activity instance is reachable from a static field in the
/// points-to graph, then thresh the alarms with witness-refutation search.
///
/// For every (static field, Activity location) pair connected in the
/// points-to graph, the checker walks a heap path from source to sink and
/// asks the witness search about each edge. A refuted edge is deleted and
/// a new path is sought; if source and sink become disconnected the alarm
/// is refuted, and if some path has every edge witnessed (or timed out,
/// which is soundly treated as not-refuted) the alarm is reported.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_LEAK_LEAKCHECKER_H
#define THRESHER_LEAK_LEAKCHECKER_H

#include "sym/WitnessSearch.h"

#include <map>
#include <string>
#include <vector>

namespace thresher {

/// Status of one (static field, Activity) alarm after threshing.
enum class AlarmStatus : uint8_t {
  Refuted,   ///< Source and sink disconnected by refutations.
  Witnessed, ///< Every edge of some path witnessed: reported leak.
  Timeout,   ///< Some path survived only because edges timed out.
};

/// One alarm and its verdict.
struct AlarmResult {
  GlobalId Source = InvalidId;
  AbsLocId Activity = InvalidId;
  AlarmStatus Status = AlarmStatus::Refuted;
  /// The surviving heap path (for Witnessed/Timeout), as edge labels.
  std::vector<std::string> PathDescription;
};

/// Aggregate report mirroring the columns of Table 1.
struct LeakReport {
  std::vector<AlarmResult> Alarms;
  uint32_t NumAlarms = 0;      ///< Alrms
  uint32_t RefutedAlarms = 0;  ///< RefA
  uint32_t Fields = 0;         ///< Flds: distinct static fields alarmed.
  uint32_t RefutedFields = 0;  ///< RefFlds: fields with all alarms refuted.
  uint32_t RefutedEdges = 0;   ///< RefEdg
  uint32_t WitnessedEdges = 0; ///< WitEdg
  uint32_t TimeoutEdges = 0;   ///< TO
  double Seconds = 0.0;        ///< T(s): symbolic execution time.

  /// Splits surviving alarms into true/false using a ground-truth set of
  /// seeded leaks (pairs of global and allocation-site label).
  uint32_t countTrue(const Program &P, const AbsLocTable &T,
                     const std::vector<std::pair<GlobalId, std::string>>
                         &TrueLeaks) const;
};

/// The leak checker.
class LeakChecker {
public:
  /// \p ActivityBase is the class whose (transitive) instances count as
  /// Activities.
  LeakChecker(const Program &P, const PointsToResult &PTA,
              ClassId ActivityBase, SymOptions Opts = {});

  /// Runs the full pipeline and returns the report. With \p Threads > 1
  /// the candidate edges are threshed concurrently first (the paper notes
  /// the analysis "is quite amenable to parallelization"; their
  /// implementation was sequential — this realizes it): every edge
  /// reachable from an alarmed static field is dispatched to a worker
  /// with its own WitnessSearch, then the sequential path/re-search
  /// algorithm runs entirely against the cache. The parallel mode may
  /// thresh edges the sequential order would have skipped (edges off the
  /// currently chosen paths), so WitEdg/RefEdg counts can be higher;
  /// alarm verdicts are identical.
  LeakReport run(unsigned Threads = 1);

  /// The underlying search engine's counters.
  const Stats &stats() const { return WS.stats(); }

  /// After run(): labels of edges in each outcome class (diagnostics).
  std::vector<std::string> edgesWithOutcome(SearchOutcome O) const;

private:
  struct EdgeKey {
    bool IsGlobal = false;
    GlobalId G = InvalidId;
    AbsLocId Base = InvalidId;
    FieldId Fld = InvalidId;
    AbsLocId Target = InvalidId;
    bool operator<(const EdgeKey &O) const {
      return std::tie(IsGlobal, G, Base, Fld, Target) <
             std::tie(O.IsGlobal, O.G, O.Base, O.Fld, O.Target);
    }
  };

  std::string edgeLabel(const EdgeKey &E) const;
  SearchOutcome checkEdge(const EdgeKey &E);
  /// BFS for a path of non-refuted edges from \p G to \p Target.
  bool findPath(GlobalId G, AbsLocId Target, std::vector<EdgeKey> &Path);
  /// All (static field, Activity location) pairs in the points-to graph.
  std::vector<std::pair<GlobalId, AbsLocId>> enumerateAlarms() const;
  /// Threshes every edge reachable from an alarmed global, concurrently.
  void prefetchEdgesParallel(
      const std::vector<std::pair<GlobalId, AbsLocId>> &Alarms,
      unsigned Threads);

  const Program &P;
  const PointsToResult &PTA;
  ClassId ActivityBase;
  SymOptions Opts;
  WitnessSearch WS;
  std::map<EdgeKey, SearchOutcome> EdgeResults;
};

} // namespace thresher

#endif // THRESHER_LEAK_LEAKCHECKER_H
