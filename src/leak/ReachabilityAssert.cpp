#include "leak/ReachabilityAssert.h"

#include <deque>
#include <set>

using namespace thresher;

ReachabilityChecker::ReachabilityChecker(const Program &P,
                                         const PointsToResult &PTA,
                                         SymOptions Opts)
    : P(P), PTA(PTA), WS(P, PTA, Opts) {}

AssertResult
ReachabilityChecker::assertUnreachableClass(GlobalId Source,
                                            ClassId TargetClass) {
  return checkTargets(Source, PTA.locsOfClassDerivedFrom(P, TargetClass));
}

AssertResult ReachabilityChecker::assertUnreachableSite(GlobalId Source,
                                                        AllocSiteId Site) {
  IdSet Targets;
  for (AbsLocId L : PTA.locsOfSite(Site))
    Targets.insert(L);
  return checkTargets(Source, Targets);
}

AssertResult ReachabilityChecker::checkTargets(GlobalId Source,
                                               const IdSet &Targets) {
  AssertResult Result;
  auto Check = [&](const EdgeKey &E) {
    auto It = Cache.find(E);
    if (It != Cache.end())
      return It->second;
    EdgeSearchResult R = E.IsGlobal
                             ? WS.searchGlobalEdge(E.G, E.Target)
                             : WS.searchFieldEdge(E.Base, E.Fld, E.Target);
    Cache.emplace(E, R.Outcome);
    switch (R.Outcome) {
    case SearchOutcome::Refuted:
      ++Result.EdgesRefuted;
      break;
    case SearchOutcome::Witnessed:
      ++Result.EdgesWitnessed;
      break;
    case SearchOutcome::BudgetExhausted:
      ++Result.EdgeTimeouts;
      break;
    }
    return R.Outcome;
  };
  auto Refuted = [&](const EdgeKey &E) {
    auto It = Cache.find(E);
    return It != Cache.end() && It->second == SearchOutcome::Refuted;
  };
  auto Label = [&](const EdgeKey &E) {
    if (E.IsGlobal)
      return P.globalName(E.G) + " -> " + PTA.Locs.label(P, E.Target);
    return PTA.Locs.label(P, E.Base) + "." + P.fieldName(E.Fld) + " -> " +
           PTA.Locs.label(P, E.Target);
  };

  // Same loop as the leak client: find a non-refuted path to any target,
  // thresh its edges, repeat until disconnected or a path survives.
  while (true) {
    // BFS for a path avoiding refuted edges.
    std::map<AbsLocId, std::pair<AbsLocId, EdgeKey>> Parent;
    std::map<AbsLocId, EdgeKey> RootEdge;
    std::set<AbsLocId> Seen;
    std::deque<AbsLocId> Work;
    for (AbsLocId L : PTA.ptGlobal(Source)) {
      EdgeKey E;
      E.IsGlobal = true;
      E.G = Source;
      E.Target = L;
      if (Refuted(E))
        continue;
      if (Seen.insert(L).second) {
        RootEdge[L] = E;
        Work.push_back(L);
      }
    }
    AbsLocId Found = InvalidId;
    while (!Work.empty() && Found == InvalidId) {
      AbsLocId L = Work.front();
      Work.pop_front();
      if (Targets.contains(L)) {
        Found = L;
        break;
      }
      for (auto [Fld, Next] : PTA.fieldEdges(L)) {
        EdgeKey E;
        E.Base = L;
        E.Fld = Fld;
        E.Target = Next;
        if (Refuted(E))
          continue;
        if (Seen.insert(Next).second) {
          Parent[Next] = {L, E};
          Work.push_back(Next);
        }
      }
    }
    if (Found == InvalidId) {
      Result.Verdict = AssertVerdict::Proven;
      Result.CounterexamplePath.clear();
      return Result;
    }
    // Reconstruct and thresh the path.
    std::vector<EdgeKey> Path;
    {
      std::vector<EdgeKey> Rev;
      AbsLocId Cur = Found;
      while (Parent.count(Cur)) {
        Rev.push_back(Parent[Cur].second);
        Cur = Parent[Cur].first;
      }
      Rev.push_back(RootEdge.at(Cur));
      Path.assign(Rev.rbegin(), Rev.rend());
    }
    bool RefutedOne = false;
    bool SawTimeout = false;
    for (const EdgeKey &E : Path) {
      SearchOutcome O = Check(E);
      if (O == SearchOutcome::Refuted) {
        RefutedOne = true;
        break;
      }
      if (O == SearchOutcome::BudgetExhausted)
        SawTimeout = true;
    }
    if (RefutedOne)
      continue;
    Result.Verdict = SawTimeout ? AssertVerdict::Inconclusive
                                : AssertVerdict::Violated;
    for (const EdgeKey &E : Path)
      Result.CounterexamplePath.push_back(Label(E));
    return Result;
  }
}
